//! SLO engine: latency and availability objectives with multi-window
//! burn-rate detection, in the Google SRE style.
//!
//! An [`Slo`] tracks two service-level indicators over a ring of
//! per-second buckets: the fraction of requests slower than the latency
//! threshold, and the fraction that failed outright. Each indicator's
//! **burn rate** is `bad_fraction / error_budget`, where the budget is
//! `1 − objective` — burn 1.0 means the budget is being consumed
//! exactly at the sustainable rate, burn 10 means ten times too fast.
//!
//! A breach requires the burn rate to exceed the threshold over *both*
//! a fast and a slow window (multi-window detection): the slow window
//! keeps one lucky second from clearing an incident, the fast window
//! keeps a long-resolved incident from alerting forever. Breaches
//! latch with hysteresis (unlatch at half the threshold) so one
//! incident fires one alert, and every breach ships its own evidence:
//! the engine records a [`FlightKind::Slo`] event and triggers a
//! flight-recorder dump ([`crate::flight::dump`]) capturing what the
//! process was doing in the seconds before the budget burned.
//!
//! Recording is cheap (three relaxed counter increments on a bucket
//! ring); burn evaluation walks the ring and is throttled to a few
//! times per second plus every scrape, via the [`SloMetricSource`]
//! gauges (`tdt_slo_*`, milli-units so 1000 == burn rate 1.0).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

use crate::clock;
use crate::flight::{self, FlightKind};
use crate::handle::MetricSource;
use crate::metrics::{labeled_name, Registry};

/// Seconds of history retained; must exceed the slow window.
const BUCKETS: usize = 512;

/// Minimum interval between burn evaluations on the record path.
const EVAL_INTERVAL_NANOS: u64 = 200_000_000;

/// Objectives and window geometry for one tracked service.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Label for gauges and dump reasons (relay id, group label, …).
    pub name: String,
    /// A request slower than this is a latency SLI miss.
    pub latency_threshold: Duration,
    /// Target fraction of requests under the threshold (e.g. 0.99).
    pub latency_objective: f64,
    /// Target fraction of requests that succeed (e.g. 0.999).
    pub availability_objective: f64,
    /// Fast detection window.
    pub fast_window: Duration,
    /// Slow confirmation window; capped at the ring's history.
    pub slow_window: Duration,
    /// Burn rate that, sustained over both windows, is a breach.
    pub burn_threshold: f64,
    /// Windows with fewer requests than this never breach (keeps a
    /// single failed request in an idle second from paging).
    pub min_samples: u64,
}

impl SloConfig {
    /// A config with conventional defaults: p99-style latency objective
    /// at the given threshold, 99.9% availability, 60 s fast / 300 s
    /// slow windows, burn threshold 10, 10-sample floor.
    pub fn new(name: impl Into<String>, latency_threshold: Duration) -> SloConfig {
        SloConfig {
            name: name.into(),
            latency_threshold,
            latency_objective: 0.99,
            availability_objective: 0.999,
            fast_window: Duration::from_secs(60),
            slow_window: Duration::from_secs(300),
            burn_threshold: 10.0,
            min_samples: 10,
        }
    }

    /// Overrides the detection windows (builder style).
    pub fn with_windows(mut self, fast: Duration, slow: Duration) -> SloConfig {
        self.fast_window = fast;
        self.slow_window = slow;
        self
    }

    /// Overrides the burn threshold (builder style).
    pub fn with_burn_threshold(mut self, threshold: f64) -> SloConfig {
        self.burn_threshold = threshold;
        self
    }

    /// Overrides the objectives (builder style).
    pub fn with_objectives(mut self, latency: f64, availability: f64) -> SloConfig {
        self.latency_objective = latency;
        self.availability_objective = availability;
        self
    }

    /// Overrides the per-window sample floor (builder style).
    pub fn with_min_samples(mut self, min_samples: u64) -> SloConfig {
        self.min_samples = min_samples;
        self
    }
}

/// One second of SLI counts. Writers race only on second-boundary
/// resets, where a handful of increments may smear into the adjacent
/// second — an accepted approximation (documented in DESIGN.md).
struct Bucket {
    sec: AtomicU64,
    total: AtomicU64,
    slow: AtomicU64,
    failed: AtomicU64,
}

impl Bucket {
    fn new() -> Bucket {
        Bucket {
            sec: AtomicU64::new(u64::MAX),
            total: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }
    }
}

/// Burn rates and breach state at one evaluation instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloStatus {
    /// Latency-SLI burn over the fast window.
    pub latency_burn_fast: f64,
    /// Latency-SLI burn over the slow window.
    pub latency_burn_slow: f64,
    /// Availability-SLI burn over the fast window.
    pub availability_burn_fast: f64,
    /// Availability-SLI burn over the slow window.
    pub availability_burn_slow: f64,
    /// Requests in the fast window.
    pub fast_requests: u64,
    /// Requests in the slow window.
    pub slow_requests: u64,
    /// Whether the breach latch is currently set.
    pub breached: bool,
}

impl SloStatus {
    /// The larger of the two SLIs' confirmed (both-window) burns.
    pub fn worst_confirmed_burn(&self) -> f64 {
        let latency = self.latency_burn_fast.min(self.latency_burn_slow);
        let availability = self.availability_burn_fast.min(self.availability_burn_slow);
        latency.max(availability)
    }
}

type BreachHook = Box<dyn Fn(&SloStatus) + Send + Sync>;

/// A tracked latency + availability objective with burn-rate breach
/// detection. Cheap to record into from any thread; share via `Arc`.
pub struct Slo {
    config: SloConfig,
    buckets: Vec<Bucket>,
    breached: AtomicBool,
    breaches: AtomicU64,
    last_eval: AtomicU64,
    dump_on_breach: AtomicBool,
    hook: Mutex<Option<BreachHook>>,
}

impl std::fmt::Debug for Slo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slo")
            .field("name", &self.config.name)
            .field("breached", &self.breached.load(Ordering::Relaxed))
            .field("breaches", &self.breaches.load(Ordering::Relaxed))
            .finish()
    }
}

impl Slo {
    /// Creates a tracker. Breach dumps are on by default — every alert
    /// ships evidence.
    pub fn new(config: SloConfig) -> Slo {
        Slo {
            config,
            buckets: (0..BUCKETS).map(|_| Bucket::new()).collect(),
            breached: AtomicBool::new(false),
            breaches: AtomicU64::new(0),
            last_eval: AtomicU64::new(0),
            dump_on_breach: AtomicBool::new(true),
            hook: Mutex::new(None),
        }
    }

    /// The tracker's label.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// The configuration this tracker evaluates against.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Enables or disables the automatic flight-recorder dump on
    /// breach (on by default).
    pub fn set_dump_on_breach(&self, enabled: bool) {
        // lint:allow(sync: "freestanding config flag: a dump skipped or taken one evaluation late is equally valid, no data is published through it")
        self.dump_on_breach.store(enabled, Ordering::Relaxed);
    }

    /// Installs an additional breach hook, called once per latched
    /// breach after the flight dump.
    pub fn set_breach_hook(&self, hook: impl Fn(&SloStatus) + Send + Sync + 'static) {
        if let Ok(mut slot) = self.hook.lock() {
            *slot = Some(Box::new(hook));
        }
    }

    /// Times a latched breach fired since creation.
    pub fn breaches(&self) -> u64 {
        self.breaches.load(Ordering::Relaxed)
    }

    /// Whether the breach latch is currently set.
    pub fn is_breached(&self) -> bool {
        // lint:allow(sync: "status poll of a latch the evaluate swap owns; the reader acts on the boolean alone, no dependent data to order")
        self.breached.load(Ordering::Relaxed)
    }

    /// Records one request outcome. Cheap: bucket increments plus a
    /// throttled burn evaluation (at most once per 200 ms).
    pub fn record(&self, latency: Duration, ok: bool) {
        let now = clock::now_nanos();
        let sec = now / 1_000_000_000;
        let Some(bucket) = self.buckets.get((sec % BUCKETS as u64) as usize) else {
            return; // unreachable: index is reduced mod the fixed ring size
        };
        let current = bucket.sec.load(Ordering::Acquire);
        if current != sec
            && bucket
                .sec
                .compare_exchange(current, sec, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            // This writer won the second-boundary rollover; reset the
            // counts. Concurrent increments between the swap and these
            // stores smear into the new second (accepted).
            // lint:allow(sync: "statistical SLI counter reset: the sec CAS owns the rollover; increments that smear across the boundary shift one request by one second, accepted by design")
            bucket.total.store(0, Ordering::Relaxed);
            // lint:allow(sync: "statistical SLI counter reset, see total above")
            bucket.slow.store(0, Ordering::Relaxed);
            // lint:allow(sync: "statistical SLI counter reset, see total above")
            bucket.failed.store(0, Ordering::Relaxed);
        }
        // lint:allow(sync: "statistical SLI counter: burn rates aggregate thousands of increments, a single reordered one cannot flip a breach decision")
        bucket.total.fetch_add(1, Ordering::Relaxed);
        if latency > self.config.latency_threshold {
            // lint:allow(sync: "statistical SLI counter, see total above")
            bucket.slow.fetch_add(1, Ordering::Relaxed);
        }
        if !ok {
            // lint:allow(sync: "statistical SLI counter, see total above")
            bucket.failed.fetch_add(1, Ordering::Relaxed);
        }
        let last = self.last_eval.load(Ordering::Relaxed);
        if now.saturating_sub(last) >= EVAL_INTERVAL_NANOS
            && self
                .last_eval
                .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.evaluate();
        }
    }

    fn window_counts(&self, now_sec: u64, window: Duration) -> (u64, u64, u64) {
        let window_secs = (window.as_secs().max(1)).min(BUCKETS as u64 - 1);
        let (mut total, mut slow, mut failed) = (0u64, 0u64, 0u64);
        for bucket in &self.buckets {
            let sec = bucket.sec.load(Ordering::Acquire);
            if sec == u64::MAX || sec > now_sec || now_sec - sec >= window_secs {
                continue;
            }
            // lint:allow(sync: "statistical window sum: the Acquire on bucket.sec above orders the liveness check; per-counter staleness of a few increments is within SLI noise")
            total += bucket.total.load(Ordering::Relaxed);
            // lint:allow(sync: "statistical window sum, see total above")
            slow += bucket.slow.load(Ordering::Relaxed);
            // lint:allow(sync: "statistical window sum, see total above")
            failed += bucket.failed.load(Ordering::Relaxed);
        }
        (total, slow, failed)
    }

    fn burn(&self, bad: u64, total: u64, objective: f64) -> f64 {
        if total < self.config.min_samples.max(1) {
            return 0.0;
        }
        let budget = (1.0 - objective).max(1e-9);
        (bad as f64 / total as f64) / budget
    }

    /// Computes burn rates over both windows without touching the
    /// breach latch.
    pub fn status(&self) -> SloStatus {
        let now_sec = clock::now_nanos() / 1_000_000_000;
        let (fast_total, fast_slow, fast_failed) =
            self.window_counts(now_sec, self.config.fast_window);
        let (slow_total, slow_slow, slow_failed) =
            self.window_counts(now_sec, self.config.slow_window);
        SloStatus {
            latency_burn_fast: self.burn(fast_slow, fast_total, self.config.latency_objective),
            latency_burn_slow: self.burn(slow_slow, slow_total, self.config.latency_objective),
            availability_burn_fast: self.burn(
                fast_failed,
                fast_total,
                self.config.availability_objective,
            ),
            availability_burn_slow: self.burn(
                slow_failed,
                slow_total,
                self.config.availability_objective,
            ),
            fast_requests: fast_total,
            slow_requests: slow_total,
            // lint:allow(sync: "status poll of the latch, see is_breached")
            breached: self.breached.load(Ordering::Relaxed),
        }
    }

    /// Evaluates burn rates and updates the breach latch, firing the
    /// flight dump and hook on a fresh breach. Returns the status.
    pub fn evaluate(&self) -> SloStatus {
        let mut status = self.status();
        let threshold = self.config.burn_threshold;
        let confirmed = status.worst_confirmed_burn();
        if confirmed > threshold {
            // lint:allow(sync: "breach latch: the swap is the entire decision — whoever flips false->true fires the dump exactly once; no other data rides on the edge")
            if !self.breached.swap(true, Ordering::Relaxed) {
                self.breaches.fetch_add(1, Ordering::Relaxed);
                let burn_milli = (confirmed * 1000.0).min(u64::MAX as f64) as u64;
                flight::record(FlightKind::Slo, 1, burn_milli, status.fast_requests);
                // lint:allow(sync: "freestanding config flag, see set_dump_on_breach")
                if self.dump_on_breach.load(Ordering::Relaxed) {
                    let _ = flight::dump(&format!(
                        "slo breach: {} burn {:.1}x over both windows",
                        self.config.name, confirmed
                    ));
                }
                if let Ok(hook) = self.hook.lock() {
                    if let Some(hook) = hook.as_ref() {
                        status.breached = true;
                        hook(&status);
                    }
                }
            }
        // lint:allow(sync: "breach latch unlatch edge, same single-decision swap as above")
        } else if confirmed < threshold / 2.0 && self.breached.swap(false, Ordering::Relaxed) {
            flight::record(FlightKind::Slo, 2, (confirmed * 1000.0) as u64, 0);
        }
        // lint:allow(sync: "status poll of the latch, see is_breached")
        status.breached = self.breached.load(Ordering::Relaxed);
        status
    }
}

/// Scrape-time bridge exporting one [`Slo`]'s burn gauges, labeled
/// `slo="<name>"`. Each scrape re-evaluates, so the gauges (and the
/// breach latch) stay fresh even when traffic stops.
pub struct SloMetricSource {
    slo: Weak<Slo>,
}

impl SloMetricSource {
    /// Bridges `slo` (held weakly; a dropped tracker exports nothing).
    pub fn new(slo: &Arc<Slo>) -> SloMetricSource {
        SloMetricSource {
            slo: Arc::downgrade(slo),
        }
    }
}

/// Converts a burn rate to milli-units for an i64 gauge.
fn burn_milli(burn: f64) -> i64 {
    (burn * 1000.0).clamp(0.0, i64::MAX as f64) as i64
}

impl MetricSource for SloMetricSource {
    fn collect(&self, registry: &Registry) {
        let Some(slo) = self.slo.upgrade() else {
            return;
        };
        let status = slo.evaluate();
        let labels = [("slo", slo.name())];
        let g = |name: &str, help: &str, value: i64| {
            registry
                .gauge(&labeled_name(name, &labels), help)
                .set(value);
        };
        g(
            "tdt_slo_latency_burn_fast_milli",
            "Latency-SLI burn rate over the fast window (1000 = 1.0x budget)",
            burn_milli(status.latency_burn_fast),
        );
        g(
            "tdt_slo_latency_burn_slow_milli",
            "Latency-SLI burn rate over the slow window (1000 = 1.0x budget)",
            burn_milli(status.latency_burn_slow),
        );
        g(
            "tdt_slo_availability_burn_fast_milli",
            "Availability-SLI burn rate over the fast window (1000 = 1.0x budget)",
            burn_milli(status.availability_burn_fast),
        );
        g(
            "tdt_slo_availability_burn_slow_milli",
            "Availability-SLI burn rate over the slow window (1000 = 1.0x budget)",
            burn_milli(status.availability_burn_slow),
        );
        g(
            "tdt_slo_breached",
            "Whether the SLO's multi-window breach latch is currently set",
            status.breached as i64,
        );
        registry
            .counter(
                &labeled_name("tdt_slo_breaches_total", &labels),
                "Latched SLO breaches since process start",
            )
            .set(slo.breaches());
    }
}

/// Registers an [`Slo`]'s gauges on an [`crate::ObsHandle`].
pub fn register_slo(handle: &crate::ObsHandle, slo: &Arc<Slo>) {
    handle.add_source(Arc::new(SloMetricSource::new(slo)));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(name: &str) -> SloConfig {
        SloConfig::new(name, Duration::from_millis(10))
            .with_windows(Duration::from_secs(2), Duration::from_secs(5))
            .with_burn_threshold(5.0)
            .with_min_samples(5)
    }

    #[test]
    fn quiet_service_never_breaches() {
        let slo = Slo::new(test_config("quiet"));
        for _ in 0..100 {
            slo.record(Duration::from_millis(1), true);
        }
        let status = slo.evaluate();
        assert!(!status.breached);
        assert_eq!(slo.breaches(), 0);
        assert!(status.worst_confirmed_burn() < 1.0);
        assert!(status.fast_requests >= 100);
    }

    #[test]
    fn failure_burst_breaches_and_latches_once() {
        let slo = Slo::new(test_config("bursty"));
        slo.set_dump_on_breach(false); // keep unit test from dumping
        for _ in 0..50 {
            slo.record(Duration::from_millis(1), false);
        }
        let status = slo.evaluate();
        assert!(status.breached, "50 failures must breach: {status:?}");
        // Re-evaluating while still burning does not re-fire.
        slo.evaluate();
        slo.evaluate();
        assert_eq!(slo.breaches(), 1, "breach latches once per incident");
    }

    #[test]
    fn latency_sli_breaches_independently() {
        let slo = Slo::new(test_config("slowpoke"));
        slo.set_dump_on_breach(false);
        for _ in 0..50 {
            // Successful but slow: availability clean, latency burning.
            slo.record(Duration::from_millis(50), true);
        }
        let status = slo.evaluate();
        assert!(status.latency_burn_fast > 5.0);
        assert!(status.availability_burn_fast < 1.0);
        assert!(status.breached);
    }

    #[test]
    fn min_samples_floor_suppresses_idle_noise() {
        let slo = Slo::new(test_config("idle").with_min_samples(100));
        slo.set_dump_on_breach(false);
        for _ in 0..20 {
            slo.record(Duration::from_millis(50), false);
        }
        let status = slo.evaluate();
        assert!(!status.breached, "below the sample floor: {status:?}");
    }

    #[test]
    fn breach_hook_fires_with_status() {
        use std::sync::atomic::AtomicU64;
        let slo = Arc::new(Slo::new(test_config("hooked")));
        slo.set_dump_on_breach(false);
        let fired = Arc::new(AtomicU64::new(0));
        let fired_clone = Arc::clone(&fired);
        slo.set_breach_hook(move |status| {
            assert!(status.breached);
            fired_clone.fetch_add(1, Ordering::Relaxed);
        });
        for _ in 0..50 {
            slo.record(Duration::from_millis(1), false);
        }
        slo.evaluate();
        assert_eq!(fired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn metric_source_exports_gauges() {
        let slo = Arc::new(Slo::new(test_config("exported")));
        slo.set_dump_on_breach(false);
        for _ in 0..20 {
            slo.record(Duration::from_millis(1), true);
        }
        let registry = Registry::new();
        SloMetricSource::new(&slo).collect(&registry);
        let snap = registry.snapshot();
        let names: Vec<_> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert!(names
            .iter()
            .any(|n| n.starts_with("tdt_slo_latency_burn_fast_milli")));
        assert!(names.iter().any(|n| n.starts_with("tdt_slo_breached")));
        assert!(names
            .iter()
            .any(|n| n.starts_with("tdt_slo_breaches_total")));
    }
}
