//! ASCII span-timeline rendering.
//!
//! Turns the recorded spans of one trace into the per-hop waterfall the
//! paper draws as its message-flow figure — except every bar here comes
//! from real monotonic timestamps captured while the query ran.

use crate::span::{SpanRecord, SpanStatus};
use std::fmt::Write as _;

/// Width of the timeline bar column in characters.
const BAR_WIDTH: usize = 48;

/// Renders the spans of one trace as an indented waterfall.
///
/// Rows are ordered depth-first from each root (a span whose parent is
/// not in the set), children sorted by start time. Each row shows the
/// hop name (indented by depth), duration, a `#` bar positioned on the
/// shared timeline, an `!` suffix for error status, and any named events
/// with their offset from trace start.
///
/// Returns a placeholder line when `spans` is empty.
pub fn render(spans: &[SpanRecord]) -> String {
    let Some(first) = spans.first() else {
        return "(no spans recorded)\n".to_string();
    };
    let t0 = spans.iter().map(|s| s.start_nanos).min().unwrap_or(0);
    let t1 = spans.iter().map(|s| s.end_nanos).max().unwrap_or(t0);
    let total = (t1.saturating_sub(t0)).max(1);

    // Index spans and find the roots (parent missing from the set).
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
    let mut order: Vec<(usize, &SpanRecord)> = Vec::with_capacity(spans.len());
    let mut roots: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| !ids.contains(&s.parent_span_id))
        .collect();
    roots.sort_by_key(|s| s.start_nanos);
    let mut stack: Vec<(usize, &SpanRecord)> = roots.into_iter().map(|s| (0, s)).rev().collect();
    while let Some((depth, span)) = stack.pop() {
        order.push((depth, span));
        let mut children: Vec<&SpanRecord> = spans
            .iter()
            .filter(|s| s.parent_span_id == span.span_id && s.span_id != span.span_id)
            .collect();
        children.sort_by_key(|s| s.start_nanos);
        for child in children.into_iter().rev() {
            stack.push((depth + 1, child));
        }
    }

    let name_width = order
        .iter()
        .map(|(depth, s)| depth * 2 + s.name.len())
        .max()
        .unwrap_or(0)
        .max(4);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace {:016x}{:016x}  total {}",
        first.trace_hi,
        first.trace_lo,
        fmt_nanos(total)
    );
    for (depth, span) in &order {
        let label = format!("{}{}", "  ".repeat(*depth), span.name);
        let start = span.start_nanos.saturating_sub(t0);
        let dur = span.duration_nanos().max(1);
        let lead = ((start as u128 * BAR_WIDTH as u128) / total as u128) as usize;
        let fill = (dur as u128 * BAR_WIDTH as u128)
            .div_ceil(total as u128)
            .max(1) as usize;
        let lead = lead.min(BAR_WIDTH.saturating_sub(1));
        let fill = fill.min(BAR_WIDTH - lead);
        let bar = format!(
            "{}{}{}",
            ".".repeat(lead),
            "#".repeat(fill),
            ".".repeat(BAR_WIDTH - lead - fill)
        );
        let status = match &span.status {
            SpanStatus::Ok => "",
            SpanStatus::Error(_) => " !",
        };
        let _ = writeln!(
            out,
            "{label:<name_width$}  {:>9}  |{bar}|{status}",
            fmt_nanos(span.duration_nanos())
        );
        for event in &span.events {
            let _ = writeln!(
                out,
                "{:<name_width$}    · {} @ +{}",
                "",
                event.name,
                fmt_nanos(event.at_nanos.saturating_sub(t0))
            );
        }
    }
    out
}

/// Formats nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
pub fn fmt_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3}s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanEvent;

    fn span(name: &'static str, span_id: u64, parent: u64, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            name,
            trace_hi: 1,
            trace_lo: 2,
            span_id,
            parent_span_id: parent,
            start_nanos: start,
            end_nanos: end,
            events: Vec::new(),
            status: SpanStatus::Ok,
        }
    }

    #[test]
    fn renders_tree_in_order() {
        let spans = vec![
            span("child.late", 3, 1, 600, 900),
            span("root", 1, 0, 0, 1000),
            span("child.early", 2, 1, 100, 500),
            span("grandchild", 4, 2, 200, 300),
        ];
        let text = render(&spans);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("trace"));
        assert!(lines[1].trim_start().starts_with("root"));
        assert!(lines[2].trim_start().starts_with("child.early"));
        assert!(lines[3].trim_start().starts_with("grandchild"));
        assert!(lines[4].trim_start().starts_with("child.late"));
        // Indentation grows with depth.
        assert!(lines[3].starts_with("    "));
    }

    #[test]
    fn marks_errors_and_events() {
        let mut failed = span("bad.hop", 2, 1, 100, 200);
        failed.status = SpanStatus::Error("boom".into());
        failed.events.push(SpanEvent {
            name: "retry.attempt",
            at_nanos: 150,
        });
        let spans = vec![span("root", 1, 0, 0, 1000), failed];
        let text = render(&spans);
        assert!(text.contains("!"));
        assert!(text.contains("retry.attempt"));
    }

    #[test]
    fn empty_input_placeholder() {
        assert_eq!(render(&[]), "(no spans recorded)\n");
    }

    #[test]
    fn fmt_units() {
        assert_eq!(fmt_nanos(12), "12ns");
        assert_eq!(fmt_nanos(1_500), "1.5µs");
        assert_eq!(fmt_nanos(2_500_000), "2.50ms");
        assert_eq!(fmt_nanos(1_234_000_000), "1.234s");
    }
}
