//! A process-wide monotonic clock.
//!
//! All span timestamps are nanoseconds since the first observation in this
//! process, so records from different threads share one timeline and can be
//! compared without wall-clock skew.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds elapsed on the monotonic clock since the process first
/// called into this module. The first caller reads `0`.
pub fn now_nanos() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    // u64 nanoseconds cover ~584 years of process uptime.
    Instant::now().saturating_duration_since(epoch).as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn advances() {
        let a = now_nanos();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(now_nanos() > a);
    }
}
