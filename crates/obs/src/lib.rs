//! Dependency-free observability for the cross-network query path.
//!
//! Three pillars, mirroring what enterprise gateway operators actually run
//! (per-hop latency and failure telemetry — see the pub-sub interop and
//! TrustCross lines of work):
//!
//! 1. **Tracing** ([`trace`], [`span`]) — a 128-bit [`trace::TraceContext`]
//!    is minted at the client, carried across the wire inside the relay
//!    envelope, and re-installed on every hop so one trade-finance query
//!    yields a single span tree spanning both networks. Spans land in
//!    bounded per-thread ring buffers; recording is lock-cheap (one
//!    uncontended mutex per thread) and inert when the context is
//!    unsampled.
//! 2. **Metrics** ([`metrics`]) — a [`metrics::Registry`] of named
//!    counters, gauges and exponential-bound histograms that unifies the
//!    relay's scattered stat bags behind one model.
//! 3. **Export** ([`export`], [`handle`], [`waterfall`]) — Prometheus-text
//!    and JSON snapshot exporters plus an ASCII span-timeline renderer for
//!    the message-flow example.
//! 4. **Incident forensics** ([`flight`], [`profile`], [`slo`]) — an
//!    always-on flight recorder (lock-free per-thread event rings drained
//!    into CRC-framed dumps), a scoped sampling profiler exporting folded
//!    stacks, and an SLO engine with multi-window burn-rate breach
//!    detection that fires a flight dump so every alert carries its own
//!    evidence.
//!
//! The crate is intentionally `std`-only: it must be usable from every
//! layer (wire, relay, core, fabric) without adding dependencies.

#![warn(missing_docs)]

pub mod clock;
pub mod export;
pub mod flight;
pub mod handle;
pub mod metrics;
pub mod profile;
pub mod slo;
pub mod span;
pub mod trace;
pub mod waterfall;

pub use flight::{FlightKind, FlightRecord};
pub use handle::{MetricSource, ObsHandle};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use slo::{Slo, SloConfig, SloStatus};
pub use span::{RecordErr, Span, SpanRecord, SpanStatus};
pub use trace::{ContextGuard, TraceContext};
