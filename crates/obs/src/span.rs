//! Spans and the per-thread ring buffers that record them.
//!
//! A [`Span`] measures one hop of the query path. Starting one against a
//! non-recording context costs nothing (the span is inert); a recording
//! span captures start/end timestamps from [`crate::clock`], a list of
//! named events (`retry.attempt`, `breaker.fast_reject`, `hedge.fired`,
//! `chaos.fault`, ...) and an error status, and lands in a bounded
//! per-thread ring on drop. Rings overwrite their oldest record when full
//! and count the overwrites, so recording never blocks or allocates
//! unboundedly on the hot path.
//!
//! Snapshots are **non-destructive**: [`snapshot_spans`] clones every
//! ring, and [`spans_for_trace`] filters to one trace id, so concurrent
//! tests can each inspect their own tree without racing on a shared drain.
//!
//! Rings are **reclaimed with their threads**: the process-wide registry
//! holds only weak references, a dying thread flushes its unsnapshotted
//! records into a bounded shared orphan ring, and dead registrations are
//! pruned on every registration and snapshot — a relay that churns
//! short-lived worker threads (hedged attempts, failover probes) holds a
//! bounded number of rings no matter how long it runs.

use crate::clock::now_nanos;
use crate::trace::{ContextGuard, TraceContext};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, Weak};

/// Capacity of each per-thread span ring.
const RING_CAPACITY: usize = 4096;

/// Maximum named events retained per span (excess increments a counter on
/// the final event instead of growing without bound).
const MAX_EVENTS_PER_SPAN: usize = 64;

/// Terminal status of a finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanStatus {
    /// The hop completed without a recorded error.
    Ok,
    /// The hop failed; the payload is the error's display form.
    Error(String),
}

/// A named point-in-time marker inside a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Event name, e.g. `retry.attempt`.
    pub name: &'static str,
    /// Nanoseconds on the process clock when the event fired.
    pub at_nanos: u64,
}

/// A finished span as stored in the ring buffers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Hop name, e.g. `relay.query`.
    pub name: &'static str,
    /// High 64 bits of the owning trace id.
    pub trace_hi: u64,
    /// Low 64 bits of the owning trace id.
    pub trace_lo: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (zero for the root).
    pub parent_span_id: u64,
    /// Start timestamp on the process monotonic clock.
    pub start_nanos: u64,
    /// End timestamp on the process monotonic clock.
    pub end_nanos: u64,
    /// Named events recorded while the span was active.
    pub events: Vec<SpanEvent>,
    /// Terminal status.
    pub status: SpanStatus,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }

    /// True when the span ended in [`SpanStatus::Error`].
    pub fn is_error(&self) -> bool {
        matches!(self.status, SpanStatus::Error(_))
    }
}

struct Ring {
    records: VecDeque<SpanRecord>,
}

/// Weak registrations only: a ring is owned by its thread's [`RingHandle`]
/// and dies with the thread, so short-lived workers (hedged attempts,
/// pool threads) cannot grow this list without bound. Dead entries are
/// pruned on every registration and snapshot.
static RINGS: Mutex<Vec<Weak<Mutex<Ring>>>> = Mutex::new(Vec::new());
/// Spans flushed from exiting threads' rings, bounded like any ring.
static ORPHANS: Mutex<VecDeque<SpanRecord>> = Mutex::new(VecDeque::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Owns one thread's ring; flushing on drop moves any still-unsnapshotted
/// records into the shared orphan ring so spans recorded on short-lived
/// threads stay visible after the thread exits.
struct RingHandle(Arc<Mutex<Ring>>);

impl Drop for RingHandle {
    fn drop(&mut self) {
        let records = std::mem::take(
            &mut self
                .0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .records,
        );
        let mut orphans = ORPHANS.lock().unwrap_or_else(PoisonError::into_inner);
        for rec in records {
            push_bounded(&mut orphans, rec);
        }
        drop(orphans);
        prune_dead_rings();
    }
}

thread_local! {
    // The VecDeque starts empty and grows on demand: an idle thread that
    // never records costs a pointer, not a full pre-sized ring.
    static LOCAL_RING: RingHandle = {
        let ring = Arc::new(Mutex::new(Ring {
            records: VecDeque::new(),
        }));
        let mut rings = RINGS.lock().unwrap_or_else(PoisonError::into_inner);
        rings.retain(|w| w.strong_count() > 0);
        rings.push(Arc::downgrade(&ring));
        RingHandle(ring)
    };
}

fn prune_dead_rings() {
    RINGS
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .retain(|w| w.strong_count() > 0);
}

fn push_bounded(records: &mut VecDeque<SpanRecord>, rec: SpanRecord) {
    if records.len() >= RING_CAPACITY {
        records.pop_front();
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
    records.push_back(rec);
}

fn record(rec: SpanRecord) {
    let mut rec = Some(rec);
    let _ = LOCAL_RING.try_with(|handle| {
        if let Some(rec) = rec.take() {
            let mut ring = handle.0.lock().unwrap_or_else(PoisonError::into_inner);
            push_bounded(&mut ring.records, rec);
        }
    });
    // Thread-local already destroyed (span dropped during thread
    // teardown): record straight into the orphan ring.
    if let Some(rec) = rec {
        let mut orphans = ORPHANS.lock().unwrap_or_else(PoisonError::into_inner);
        push_bounded(&mut orphans, rec);
    }
}

/// Total spans overwritten before anyone snapshotted them (process-wide).
pub fn spans_dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Number of per-thread rings currently alive (exported as the
/// `tdt_obs_span_rings` gauge; a value that tracks thread churn instead
/// of plateauing at the worker count indicates a ring leak).
pub fn live_rings() -> u64 {
    let mut rings = RINGS.lock().unwrap_or_else(PoisonError::into_inner);
    rings.retain(|w| w.strong_count() > 0);
    rings.len() as u64
}

/// Clones every span currently held in any thread's ring, plus spans
/// flushed from rings of threads that have since exited.
pub fn snapshot_spans() -> Vec<SpanRecord> {
    let rings: Vec<Arc<Mutex<Ring>>> = {
        let mut rings = RINGS.lock().unwrap_or_else(PoisonError::into_inner);
        rings.retain(|w| w.strong_count() > 0);
        rings.iter().filter_map(Weak::upgrade).collect()
    };
    let mut out: Vec<SpanRecord> = ORPHANS
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .cloned()
        .collect();
    for ring in rings {
        let ring = ring.lock().unwrap_or_else(PoisonError::into_inner);
        out.extend(ring.records.iter().cloned());
    }
    out
}

/// Clones every recorded span belonging to the given 128-bit trace id.
pub fn spans_for_trace(trace_hi: u64, trace_lo: u64) -> Vec<SpanRecord> {
    snapshot_spans()
        .into_iter()
        .filter(|s| s.trace_hi == trace_hi && s.trace_lo == trace_lo)
        .collect()
}

/// An in-flight measurement of one hop.
///
/// Inert (all methods are no-ops) when started from a non-recording
/// context. A live span records itself into the thread-local ring when
/// dropped; [`Span::fail`] or [`RecordErr::record_err`] set the error
/// status first.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanRecord>,
}

impl Span {
    /// Starts a span for `ctx`. Inert unless `ctx.is_recording()`.
    pub fn start(name: &'static str, ctx: &TraceContext) -> Span {
        if !ctx.is_recording() {
            return Span::inert();
        }
        crate::flight::record(
            crate::flight::FlightKind::SpanOpen,
            0,
            ctx.span_id,
            ctx.trace_lo,
        );
        Span {
            inner: Some(SpanRecord {
                name,
                trace_hi: ctx.trace_hi,
                trace_lo: ctx.trace_lo,
                span_id: ctx.span_id,
                parent_span_id: ctx.parent_span_id,
                start_nanos: now_nanos(),
                end_nanos: 0,
                events: Vec::new(),
                status: SpanStatus::Ok,
            }),
        }
    }

    /// A span that records nothing.
    pub fn inert() -> Span {
        Span { inner: None }
    }

    /// True when this span will actually be recorded.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Records a named point-in-time event on this span.
    pub fn event(&mut self, name: &'static str) {
        if let Some(rec) = self.inner.as_mut() {
            if rec.events.len() < MAX_EVENTS_PER_SPAN {
                rec.events.push(SpanEvent {
                    name,
                    at_nanos: now_nanos(),
                });
            }
        }
    }

    /// Marks the span as failed with the error's display form.
    pub fn fail(&mut self, message: &str) {
        if let Some(rec) = self.inner.as_mut() {
            rec.status = SpanStatus::Error(message.to_string());
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(mut rec) = self.inner.take() {
            rec.end_nanos = now_nanos();
            if rec.is_error() {
                crate::flight::record(
                    crate::flight::FlightKind::SpanFail,
                    0,
                    rec.span_id,
                    rec.duration_nanos(),
                );
                crate::flight::maybe_error_dump(rec.name);
            } else {
                crate::flight::record(
                    crate::flight::FlightKind::SpanClose,
                    0,
                    rec.span_id,
                    rec.duration_nanos(),
                );
            }
            record(rec);
        }
    }
}

/// Starts a child span of the context currently installed on this thread.
///
/// Returns the span plus a guard holding the child context installed, so
/// anything called while the guard lives nests under this span. With no
/// recording context installed, both are no-ops.
pub fn enter(name: &'static str) -> (Span, ContextGuard) {
    match TraceContext::current() {
        Some(parent) if parent.is_recording() => {
            let ctx = parent.child();
            let guard = ctx.install();
            (Span::start(name, &ctx), guard)
        }
        _ => (Span::inert(), ContextGuard::noop()),
    }
}

/// Starts a child span of an explicit remote parent context (one carried
/// in from the wire), installing the child context on this thread.
pub fn enter_remote(name: &'static str, remote: &TraceContext) -> (Span, ContextGuard) {
    if !remote.is_recording() {
        return (Span::inert(), ContextGuard::noop());
    }
    let ctx = remote.child();
    let guard = ctx.install();
    (Span::start(name, &ctx), guard)
}

/// Extension trait recording `Err` outcomes onto the active span.
///
/// `result.record_err(&mut span)` is the idiom the `lint` `obs` pass
/// checks for in relay entry points: it sets the span's error status on
/// the `Err` arm and hands the result back unchanged either way.
pub trait RecordErr {
    /// Sets the error status on `span` when `self` is `Err`.
    #[must_use]
    fn record_err(self, span: &mut Span) -> Self;
}

impl<T, E: std::fmt::Display> RecordErr for Result<T, E> {
    fn record_err(self, span: &mut Span) -> Self {
        if let Err(e) = &self {
            span.fail(&e.to_string());
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let ctx = TraceContext::root();
        {
            let mut span = Span::start("test.hop", &ctx);
            span.event("test.event");
        }
        let spans = spans_for_trace(ctx.trace_hi, ctx.trace_lo);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "test.hop");
        assert_eq!(spans[0].span_id, ctx.span_id);
        assert_eq!(spans[0].events.len(), 1);
        assert_eq!(spans[0].status, SpanStatus::Ok);
        assert!(spans[0].end_nanos >= spans[0].start_nanos);
    }

    #[test]
    fn unsampled_span_is_inert() {
        let ctx = TraceContext::unsampled_root();
        {
            let mut span = Span::start("test.quiet", &ctx);
            span.event("ignored");
            span.fail("ignored");
            assert!(!span.is_recording());
        }
        assert!(spans_for_trace(ctx.trace_hi, ctx.trace_lo).is_empty());
    }

    #[test]
    fn record_err_sets_error_status() {
        let ctx = TraceContext::root();
        {
            let mut span = Span::start("test.err", &ctx);
            let out: Result<(), String> = Err("boom".to_string()).record_err(&mut span);
            assert!(out.is_err());
        }
        let spans = spans_for_trace(ctx.trace_hi, ctx.trace_lo);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].status, SpanStatus::Error("boom".into()));
        assert!(spans[0].is_error());
    }

    #[test]
    fn enter_nests_under_current() {
        let root = TraceContext::root();
        let _g = root.install();
        {
            let _root_span = Span::start("test.root", &root);
            let (_child, _cg) = enter("test.child");
            assert_eq!(
                TraceContext::current().map(|c| c.parent_span_id),
                Some(root.span_id)
            );
        }
        let spans = spans_for_trace(root.trace_hi, root.trace_lo);
        assert_eq!(spans.len(), 2);
        let child = spans
            .iter()
            .find(|s| s.name == "test.child")
            .expect("child span");
        assert_eq!(child.parent_span_id, root.span_id);
    }

    #[test]
    fn enter_without_context_is_inert() {
        let (span, _guard) = enter("test.orphan");
        assert!(!span.is_recording());
    }

    #[test]
    fn enter_remote_links_wire_parent() {
        let remote = TraceContext::root();
        {
            let (span, _g) = enter_remote("test.remote", &remote);
            assert!(span.is_recording());
        }
        let spans = spans_for_trace(remote.trace_hi, remote.trace_lo);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].parent_span_id, remote.span_id);
    }

    #[test]
    fn dead_thread_rings_are_reclaimed_and_spans_flushed() {
        let ctx = TraceContext::root();
        let before = live_rings();
        const THREADS: u64 = 32;
        for _ in 0..THREADS {
            let ctx = ctx.child();
            std::thread::spawn(move || {
                let _span = Span::start("test.worker", &ctx);
            })
            .join()
            .expect("worker");
        }
        // Every worker's span survived its thread (flushed to orphans)...
        assert_eq!(
            spans_for_trace(ctx.trace_hi, ctx.trace_lo).len(),
            THREADS as usize
        );
        // ...but the dead workers' rings did not accumulate (slack for
        // rings other concurrently running tests legitimately create).
        assert!(
            live_rings() < before + THREADS / 2,
            "dead rings not reclaimed: {} live before, {} after {} short-lived threads",
            before,
            live_rings(),
            THREADS
        );
    }

    #[test]
    fn event_cap_holds() {
        let ctx = TraceContext::root();
        {
            let mut span = Span::start("test.cap", &ctx);
            for _ in 0..(MAX_EVENTS_PER_SPAN + 10) {
                span.event("e");
            }
        }
        let spans = spans_for_trace(ctx.trace_hi, ctx.trace_lo);
        assert_eq!(spans[0].events.len(), MAX_EVENTS_PER_SPAN);
    }
}
